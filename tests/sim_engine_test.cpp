#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sched/heuristics.hpp"

namespace gridsched::sim {
namespace {

Job make_job(Time arrival, double work, unsigned nodes, double demand) {
  Job job;
  job.arrival = arrival;
  job.work = work;
  job.nodes = nodes;
  job.demand = demand;
  return job;
}

/// Scripted scheduler: assigns every batch job to a fixed site per call,
/// following a site sequence (last entry repeats).
class ScriptedScheduler final : public BatchScheduler {
 public:
  explicit ScriptedScheduler(std::vector<SiteId> sequence)
      : sequence_(std::move(sequence)) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }

  std::vector<Assignment> schedule(const SchedulerContext& context) override {
    const SiteId site = sequence_[std::min(call_, sequence_.size() - 1)];
    ++call_;
    std::vector<Assignment> out;
    for (std::size_t j = 0; j < context.jobs.size(); ++j) out.push_back({j,
                                                                         site});
    return out;
  }

 private:
  std::vector<SiteId> sequence_;
  std::size_t call_ = 0;
};

/// Scheduler that never assigns anything (starvation probe).
class RefusingScheduler final : public BatchScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "refuser"; }
  std::vector<Assignment> schedule(const SchedulerContext&) override { return {
    };
  }
};

/// Scheduler emitting a caller-supplied raw assignment list once.
class RawScheduler final : public BatchScheduler {
 public:
  explicit RawScheduler(std::vector<Assignment> out) : out_(std::move(out)) {}
  [[nodiscard]] std::string name() const override { return "raw"; }
  std::vector<Assignment> schedule(const SchedulerContext&) override {
    return std::exchange(out_, {});
  }

 private:
  std::vector<Assignment> out_;
};

EngineConfig quick_config(Time interval = 50.0) {
  EngineConfig config;
  config.batch_interval = interval;
  config.detection = FailureDetection::kAtEnd;
  return config;
}

TEST(Engine, RejectsEmptySiteList) {
  EXPECT_THROW(Engine({}, {make_job(0, 10, 1, 0.5)}, quick_config()),
               std::invalid_argument);
}

TEST(Engine, RejectsNonPositiveInterval) {
  EngineConfig config;
  config.batch_interval = 0.0;
  EXPECT_THROW(Engine({{0, 1, 1.0, 1.0}}, std::vector<Job>{}, config),
               std::invalid_argument);
}

TEST(Engine, RejectsJobWithoutSafeHome) {
  // Only site has SL 0.7 < demand 0.9: a failure could never be recovered.
  EXPECT_THROW(Engine({{0, 1, 1.0, 0.7}}, {make_job(0, 10, 1, 0.9)},
                      quick_config()),
               std::invalid_argument);
}

TEST(Engine, RejectsOversizedJob) {
  EXPECT_THROW(Engine({{0, 2, 1.0, 1.0}}, {make_job(0, 10, 4, 0.5)},
                      quick_config()),
               std::invalid_argument);
}

TEST(Engine, RejectsBadJobFields) {
  EXPECT_THROW(Engine({{0, 1, 1.0, 1.0}}, {make_job(0, 0.0, 1, 0.5)},
                      quick_config()),
               std::invalid_argument);
  EXPECT_THROW(Engine({{0, 1, 1.0, 1.0}}, {make_job(0, 10, 0, 0.5)},
                      quick_config()),
               std::invalid_argument);
  EXPECT_THROW(Engine({{0, 1, 1.0, 1.0}}, {make_job(-1, 10, 1, 0.5)},
                      quick_config()),
               std::invalid_argument);
}

TEST(Engine, SingleJobTimeline) {
  // Arrival 10, interval 50 -> scheduled at the t=50 cycle, runs 100 s.
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(10.0, 100.0, 1, 0.8)},
                quick_config(50.0));
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);

  const Job& job = engine.jobs()[0];
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_DOUBLE_EQ(job.first_start, 50.0);
  EXPECT_DOUBLE_EQ(job.finish, 150.0);
  EXPECT_DOUBLE_EQ(engine.makespan(), 150.0);
  EXPECT_EQ(job.attempts, 1u);
  EXPECT_EQ(job.failures, 0u);
  EXPECT_FALSE(job.took_risk);
  EXPECT_EQ(engine.counters().completed_jobs, 1u);
  EXPECT_EQ(engine.counters().batch_invocations, 1u);
}

TEST(Engine, JobsAccumulateIntoOneBatch) {
  // Both jobs arrive before the first cycle at t=100 and share one node.
  Engine engine({{0, 1, 1.0, 1.0}},
                {make_job(10.0, 20.0, 1, 0.7), make_job(60.0, 30.0, 1, 0.7)},
                quick_config(100.0));
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);

  EXPECT_EQ(engine.counters().batch_invocations, 1u);
  EXPECT_DOUBLE_EQ(engine.jobs()[0].finish, 120.0);
  EXPECT_DOUBLE_EQ(engine.jobs()[1].finish, 150.0);
}

TEST(Engine, MultiNodeJobsShareSite) {
  // 2-node site: a 2-node job then a 1-node job queue up, then overlap.
  Engine engine({{0, 2, 1.0, 1.0}},
                {make_job(0.0, 40.0, 2, 0.7), make_job(0.0, 10.0, 1, 0.7),
                 make_job(0.0, 10.0, 1, 0.7)},
                quick_config(50.0));
  ScriptedScheduler scheduler({0});
  engine.run(scheduler);
  // Dispatch order = batch order: J0 holds both nodes 50..90; J1 90..100;
  // J2 90..100 on the other node.
  EXPECT_DOUBLE_EQ(engine.jobs()[0].finish, 90.0);
  EXPECT_DOUBLE_EQ(engine.jobs()[1].finish, 100.0);
  EXPECT_DOUBLE_EQ(engine.jobs()[2].finish, 100.0);
  EXPECT_DOUBLE_EQ(engine.makespan(), 100.0);
}

TEST(Engine, SpeedScalesExecution) {
  Engine engine({{0, 1, 4.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.7)},
                quick_config(10.0));
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  EXPECT_DOUBLE_EQ(engine.jobs()[0].finish, 35.0);  // 10 + 100/4
}

TEST(Engine, CertainFailureIsRescheduledToSafeSite) {
  // Site 0 is fast but insecure; lambda enormous => P(fail) ~= 1.
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;
  Engine engine({{0, 1, 1.0, 0.4}, {1, 1, 1.0, 1.0}},
                {make_job(0.0, 100.0, 1, 0.9)}, config);
  ScriptedScheduler scheduler({0, 1});
  engine.run(scheduler);

  const Job& job = engine.jobs()[0];
  EXPECT_EQ(job.failures, 1u);
  EXPECT_EQ(job.attempts, 2u);
  EXPECT_TRUE(job.took_risk);
  EXPECT_TRUE(job.secure_only);
  EXPECT_EQ(job.final_site, 1u);
  EXPECT_EQ(job.state, JobState::kCompleted);
  // Attempt 1: 50..150 (fails at end). The t=150 batch cycle fires right
  // after the failure event (FIFO tie-break), so the retry starts at 150
  // on the safe site and runs to 250.
  EXPECT_DOUBLE_EQ(job.first_start, 50.0);
  EXPECT_DOUBLE_EQ(job.last_start, 150.0);
  EXPECT_DOUBLE_EQ(job.finish, 250.0);
  EXPECT_EQ(engine.counters().failure_events, 1u);
  EXPECT_EQ(engine.counters().risky_attempts, 1u);
}

TEST(Engine, FailStopForbidsSecondRisk) {
  // Scripted scheduler would send the retry to the insecure site again;
  // the engine must reject that as a protocol violation.
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;
  Engine engine({{0, 1, 1.0, 0.4}, {1, 1, 1.0, 1.0}},
                {make_job(0.0, 100.0, 1, 0.9)}, config);
  ScriptedScheduler scheduler({0, 0});
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, UniformDetectionFailsBeforePlannedEnd) {
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;
  config.detection = FailureDetection::kUniformFraction;
  Engine engine({{0, 1, 1.0, 0.4}, {1, 1, 1.0, 1.0}},
                {make_job(0.0, 100.0, 1, 0.9)}, config);
  ScriptedScheduler scheduler({0, 1});
  engine.run(scheduler);
  const Job& job = engine.jobs()[0];
  EXPECT_EQ(job.failures, 1u);
  // The retry cycle can only fire after the detection instant, which is
  // strictly inside (50, 150]; the retry completes 100 s after it starts.
  EXPECT_GT(job.last_start, 50.0);
  EXPECT_DOUBLE_EQ(job.finish - job.last_start, 100.0);
}

TEST(Engine, AtMostOneFailurePerJob) {
  EngineConfig config = quick_config(20.0);
  config.lambda = 1000.0;
  std::vector<Job> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(make_job(i * 5.0, 40.0, 1, 0.9));
  }
  Engine engine({{0, 2, 1.0, 0.4}, {1, 2, 1.0, 0.95}}, jobs, config);
  sched::MctScheduler scheduler(security::RiskPolicy::risky());
  engine.run(scheduler);
  for (const Job& job : engine.jobs()) {
    EXPECT_LE(job.failures, 1u);
    EXPECT_EQ(job.attempts, job.failures + 1);
  }
}

TEST(Engine, SecurePolicyNeverRisks) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) jobs.push_back(make_job(i * 3.0, 25.0, 1, 0.8));
  Engine engine({{0, 2, 1.0, 0.5}, {1, 2, 1.0, 0.9}}, jobs, quick_config(30.0));
  sched::MinMinScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  EXPECT_EQ(engine.counters().risky_attempts, 0u);
  EXPECT_EQ(engine.counters().failure_events, 0u);
  for (const Job& job : engine.jobs()) {
    EXPECT_EQ(job.final_site, 1u);  // only the SL=0.9 site is admissible
  }
}

TEST(Engine, StarvationGuardFires) {
  EngineConfig config = quick_config(10.0);
  config.max_idle_cycles = 5;
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)}, config);
  RefusingScheduler scheduler;
  EXPECT_THROW(engine.run(scheduler), std::runtime_error);
}

TEST(Engine, RunTwiceIsAnError) {
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                quick_config(10.0));
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, ProtocolViolationOutOfRangeJob) {
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                quick_config(10.0));
  RawScheduler scheduler({{5, 0}});
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, ProtocolViolationInvalidSite) {
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                quick_config(10.0));
  RawScheduler scheduler({{0, 9}});
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, ProtocolViolationDuplicateAssignment) {
  Engine engine({{0, 2, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                quick_config(10.0));
  RawScheduler scheduler({{0, 0}, {0, 0}});
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, ProtocolViolationOversizedPlacement) {
  Engine engine({{0, 1, 1.0, 1.0}, {1, 4, 1.0, 1.0}},
                {make_job(0.0, 10.0, 4, 0.5)}, quick_config(10.0));
  RawScheduler scheduler({{0, 0}});  // 4-node job onto 1-node site
  EXPECT_THROW(engine.run(scheduler), std::logic_error);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    EngineConfig config = quick_config(25.0);
    config.lambda = 3.0;
    config.seed = 77;
    std::vector<Job> jobs;
    for (int i = 0; i < 40; ++i) {
      jobs.push_back(make_job(i * 7.0, 15.0 + i, 1, 0.6 + 0.01 * (i % 30)));
    }
    Engine engine({{0, 2, 1.0, 0.5}, {1, 2, 2.0, 0.7}, {2, 1, 1.0, 0.95}},
                  jobs, config);
    sched::MinMinScheduler scheduler(security::RiskPolicy::risky());
    engine.run(scheduler);
    std::vector<double> finishes;
    for (const Job& job : engine.jobs()) finishes.push_back(job.finish);
    return finishes;
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, DifferentSeedsChangeFailureOutcomes) {
  auto fail_count = [](std::uint64_t seed) {
    EngineConfig config = quick_config(25.0);
    config.lambda = 3.0;
    config.seed = seed;
    std::vector<Job> jobs;
    for (int i = 0; i < 60; ++i) jobs.push_back(make_job(i * 5.0, 20.0, 1,
                                                         0.85));
    Engine engine({{0, 4, 1.0, 0.45}, {1, 2, 1.0, 0.95}}, jobs, config);
    sched::MctScheduler scheduler(security::RiskPolicy::risky());
    engine.run(scheduler);
    return engine.counters().failure_events;
  };
  // Not a tautology: with ~60 risky draws the chance of identical counts
  // for 4 different seeds is negligible.
  const auto a = fail_count(1);
  const auto b = fail_count(2);
  const auto c = fail_count(3);
  const auto d = fail_count(4);
  EXPECT_TRUE(a != b || b != c || c != d);
}

TEST(Engine, FailureReleasesReservedCapacity) {
  // Job A (2 nodes, 1000 s) certain-fails on the risky site with immediate
  // detection: both reserved node-tails must come back at the detection
  // instant so job B can reuse the site at the next cycle instead of
  // queueing behind A's stale 1000 s reservation.
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;  // P(fail) ~= 1 on the risky site
  config.detection = FailureDetection::kImmediate;
  std::vector<Job> jobs = {make_job(0.0, 1000.0, 2, 0.9),
                           make_job(60.0, 10.0, 1, 0.3)};
  Engine engine({{0, 2, 1.0, 0.4}, {1, 2, 1.0, 1.0}}, jobs, config);
  sched::MctScheduler scheduler(security::RiskPolicy::risky());
  engine.run(scheduler);

  const Job& a = engine.jobs()[0];
  const Job& b = engine.jobs()[1];
  EXPECT_EQ(a.failures, 1u);
  EXPECT_EQ(a.final_site, 1u);  // fail-stop retry on the safe site
  EXPECT_DOUBLE_EQ(a.finish, 1100.0);  // retry dispatched at t=100
  // B lands on site 0 at the t=100 cycle: both nodes were released when
  // A's failure was detected (t=50.001), not held until t=1050.
  EXPECT_EQ(b.final_site, 0u);
  EXPECT_DOUBLE_EQ(b.first_start, 100.0);
  EXPECT_DOUBLE_EQ(b.finish, 110.0);
  // Both of A's reserved node-tails were reclaimed, none silently dropped.
  EXPECT_EQ(engine.counters().released_nodes, 2u);
  EXPECT_EQ(engine.counters().unreleased_nodes, 0u);
}

TEST(Engine, FailureReleaseCountsTailsAlreadyReReserved) {
  // A 1-node site runs doomed job A (detection at the very end of the
  // window); job B's reservation is stacked onto the same node at the
  // t=100 cycle (the slow safe site would finish B far later), before A's
  // failure fires at t=150. The release then finds the node's free time
  // moved past A's window end — 0 tails reclaimed, surfaced through
  // unreleased_nodes rather than silently ignored.
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;
  config.detection = FailureDetection::kAtEnd;
  std::vector<Job> jobs = {make_job(0.0, 100.0, 1, 0.9),
                           make_job(60.0, 10.0, 1, 0.3)};
  Engine engine({{0, 1, 1.0, 0.4}, {1, 1, 0.01, 1.0}}, jobs, config);
  sched::MctScheduler scheduler(security::RiskPolicy::risky());
  engine.run(scheduler);

  const Job& b = engine.jobs()[1];
  EXPECT_EQ(engine.jobs()[0].failures, 1u);
  EXPECT_EQ(b.final_site, 0u);
  EXPECT_DOUBLE_EQ(b.first_start, 150.0);  // stacked behind A's full window
  EXPECT_EQ(engine.counters().released_nodes, 0u);
  EXPECT_EQ(engine.counters().unreleased_nodes, 1u);
}

TEST(Engine, BatchCycleAtExactMultipleStaysStrictlyAfterNow) {
  // 5 * 0.2 rounds to exactly 1.0 while 1.0 / 0.2 floats to 4.999...: the
  // old float cycle computation (floor(now/interval) + 1) scheduled the
  // cycle for the t=1.0 arrival AT t=1.0 itself. The integer-index
  // derivation must place it strictly after, at 6 * 0.2.
  EngineConfig config = quick_config(0.2);
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(1.0, 1.0, 1, 0.5)}, config);
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  const Job& job = engine.jobs()[0];
  EXPECT_GT(job.first_start, 1.0);
  EXPECT_NEAR(job.first_start, 1.2, 1e-9);
}

TEST(Engine, SchedulerSecondsAccumulate) {
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(make_job(i * 2.0, 5.0, 1, 0.7));
  Engine engine({{0, 2, 1.0, 1.0}}, jobs, quick_config(10.0));
  sched::MinMinScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  EXPECT_GE(engine.counters().scheduler_seconds, 0.0);
  EXPECT_GE(engine.counters().batch_invocations, 1u);
}

}  // namespace
}  // namespace gridsched::sim
