#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridsched::sim {
namespace {

Event at(Time time, EventKind kind = EventKind::kBatchCycle) {
  Event event;
  event.time = time;
  event.kind = kind;
  return event;
}

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(at(5.0));
  queue.push(at(1.0));
  queue.push(at(3.0));
  EXPECT_DOUBLE_EQ(queue.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 5.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  Event first = at(2.0, EventKind::kJobArrival);
  first.job = 1;
  Event second = at(2.0, EventKind::kJobArrival);
  second.job = 2;
  Event third = at(2.0, EventKind::kJobArrival);
  third.job = 3;
  queue.push(first);
  queue.push(second);
  queue.push(third);
  EXPECT_EQ(queue.pop().job, 1u);
  EXPECT_EQ(queue.pop().job, 2u);
  EXPECT_EQ(queue.pop().job, 3u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.push(at(10.0));
  queue.push(at(4.0));
  EXPECT_DOUBLE_EQ(queue.pop().time, 4.0);
  queue.push(at(2.0));
  queue.push(at(7.0));
  EXPECT_DOUBLE_EQ(queue.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 7.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 10.0);
}

TEST(EventQueue, TopPeeksWithoutRemoval) {
  EventQueue queue;
  queue.push(at(9.0));
  queue.push(at(1.0));
  EXPECT_DOUBLE_EQ(queue.top().time, 1.0);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(EventQueue, PreservesPayloadFields) {
  EventQueue queue;
  Event event = at(3.5, EventKind::kJobEnd);
  event.job = 17;
  event.site = 4;
  event.is_failure = true;
  queue.push(event);
  const Event popped = queue.pop();
  EXPECT_EQ(popped.kind, EventKind::kJobEnd);
  EXPECT_EQ(popped.job, 17u);
  EXPECT_EQ(popped.site, 4u);
  EXPECT_TRUE(popped.is_failure);
}

TEST(EventQueue, SameTimestampCollisionsAcrossAllKindsStayFifo) {
  // A site-down, a batch cycle, two job ends and a site-up all collide on
  // one timestamp: the seq tie-break must fully order the five kinds in
  // push order — this is what makes churn-vs-cycle races deterministic.
  EventQueue queue;
  const EventKind kinds[] = {EventKind::kSiteDown, EventKind::kBatchCycle,
                             EventKind::kJobEnd, EventKind::kSiteUp,
                             EventKind::kJobEnd};
  for (const EventKind kind : kinds) queue.push(at(2000.0, kind));
  // An earlier and a later event bracket the collision.
  queue.push(at(1999.0, EventKind::kJobEnd));
  queue.push(at(2001.0, EventKind::kSiteDown));

  EXPECT_EQ(queue.pop().kind, EventKind::kJobEnd);  // t=1999
  for (const EventKind kind : kinds) {
    const Event event = queue.pop();
    EXPECT_DOUBLE_EQ(event.time, 2000.0);
    EXPECT_EQ(event.kind, kind);
  }
  EXPECT_EQ(queue.pop().kind, EventKind::kSiteDown);  // t=2001
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, AttemptSerialRoundTrips) {
  EventQueue queue;
  Event event = at(1.0, EventKind::kJobEnd);
  event.job = 3;
  event.attempt = 7;
  queue.push(event);
  EXPECT_EQ(queue.pop().attempt, 7u);
}

TEST(EventQueue, LargeMixedLoadStaysSorted) {
  EventQueue queue;
  // Push times in a scrambled deterministic pattern.
  for (int i = 0; i < 1000; ++i) {
    queue.push(at(static_cast<double>((i * 7919) % 499)));
  }
  double last = -1.0;
  std::size_t popped = 0;
  while (!queue.empty()) {
    const Event event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
    ++popped;
  }
  EXPECT_EQ(popped, 1000u);
}

}  // namespace
}  // namespace gridsched::sim
