#include "sim/site.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace gridsched::sim {
namespace {

TEST(NodeAvailability, RejectsZeroNodes) {
  EXPECT_THROW(NodeAvailability(0), std::invalid_argument);
}

TEST(NodeAvailability, InitiallyFreeAtT0) {
  const NodeAvailability avail(4, 100.0);
  EXPECT_EQ(avail.nodes(), 4u);
  for (const Time t : avail.free_times()) EXPECT_DOUBLE_EQ(t, 100.0);
}

TEST(NodeAvailability, EarliestStartValidatesK) {
  const NodeAvailability avail(3);
  EXPECT_THROW(static_cast<void>(avail.earliest_start(0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(avail.earliest_start(4, 0.0)),
               std::invalid_argument);
}

TEST(NodeAvailability, EarliestStartIsNowWhenIdle) {
  const NodeAvailability avail(3, 0.0);
  EXPECT_DOUBLE_EQ(avail.earliest_start(2, 50.0), 50.0);
}

TEST(NodeAvailability, ReserveOccupiesEarliestNodes) {
  NodeAvailability avail(3, 0.0);
  const auto w1 = avail.reserve(2, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(w1.start, 0.0);
  EXPECT_DOUBLE_EQ(w1.end, 10.0);
  // One node still free at 0, two at 10.
  EXPECT_DOUBLE_EQ(avail.earliest_start(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(avail.earliest_start(2, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(avail.earliest_start(3, 0.0), 10.0);
}

TEST(NodeAvailability, SequentialJobsQueueOnOneNode) {
  NodeAvailability avail(1, 0.0);
  EXPECT_DOUBLE_EQ(avail.reserve(1, 5.0, 0.0).end, 5.0);
  EXPECT_DOUBLE_EQ(avail.reserve(1, 5.0, 0.0).start, 5.0);
  EXPECT_DOUBLE_EQ(avail.reserve(1, 5.0, 12.0).start, 12.0);  // idle gap
}

TEST(NodeAvailability, PreviewDoesNotMutate) {
  NodeAvailability avail(2, 0.0);
  const auto before = avail.free_times();
  const auto window = avail.preview(2, 7.0, 3.0);
  EXPECT_DOUBLE_EQ(window.start, 3.0);
  EXPECT_DOUBLE_EQ(window.end, 10.0);
  EXPECT_EQ(avail.free_times(), before);
}

TEST(NodeAvailability, ProfileStaysSorted) {
  NodeAvailability avail(4, 0.0);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const unsigned k = 1 + static_cast<unsigned>(rng.index(4));
    avail.reserve(k, rng.uniform(1.0, 20.0), rng.uniform(0.0, 50.0));
    EXPECT_TRUE(std::is_sorted(avail.free_times().begin(),
                               avail.free_times().end()));
  }
}

/// Property: earliest_start(k) equals the k-th smallest free time, checked
/// against a brute-force recomputation after random reservation sequences.
class AvailabilityProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AvailabilityProperty, KthSmallestMatchesBruteForce) {
  const unsigned nodes = GetParam();
  NodeAvailability avail(nodes, 0.0);
  util::Rng rng(nodes * 101);
  for (int step = 0; step < 50; ++step) {
    const unsigned k = 1 + static_cast<unsigned>(rng.index(nodes));
    const Time now = rng.uniform(0.0, 100.0);
    std::vector<Time> copy = avail.free_times();
    std::sort(copy.begin(), copy.end());
    EXPECT_DOUBLE_EQ(avail.earliest_start(k, now),
                     std::max(now, copy[k - 1]));
    avail.reserve(k, rng.uniform(0.5, 10.0), now);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, AvailabilityProperty,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u));

TEST(NodeAvailability, ReleaseReclaimsUntouchedNodes) {
  NodeAvailability avail(2, 0.0);
  const auto window = avail.reserve(2, 10.0, 0.0);
  EXPECT_EQ(avail.release(2, window.end, 4.0), 2u);
  EXPECT_DOUBLE_EQ(avail.earliest_start(2, 0.0), 4.0);
}

TEST(NodeAvailability, ReleaseSkipsReReservedNodes) {
  NodeAvailability avail(2, 0.0);
  const auto w1 = avail.reserve(1, 10.0, 0.0);   // node A busy to 10
  avail.reserve(2, 5.0, 0.0);                    // both nodes busy 10..15
  // Node A's free time is now 15, not w1.end: release finds nothing at 10.
  EXPECT_EQ(avail.release(1, w1.end, 2.0), 0u);
}

TEST(NodeAvailability, ReleasePartialCount) {
  NodeAvailability avail(4, 0.0);
  const auto window = avail.reserve(3, 8.0, 0.0);
  // Ask to release only 2 of the 3 reserved nodes.
  EXPECT_EQ(avail.release(2, window.end, 1.0), 2u);
  const auto& times = avail.free_times();
  EXPECT_EQ(std::count(times.begin(), times.end(), 8.0), 1);
  EXPECT_EQ(std::count(times.begin(), times.end(), 1.0), 2);
}

TEST(NodeAvailability, ReleaseRejectsLateTimes) {
  NodeAvailability avail(1, 0.0);
  const auto window = avail.reserve(1, 5.0, 0.0);
  EXPECT_THROW(avail.release(1, window.end, 6.0), std::invalid_argument);
}

// ---------------------------------------------------------------- sites ---

SiteConfig config_of(unsigned nodes, double speed, double security) {
  return {0, nodes, speed, security};
}

TEST(GridSite, RejectsNonPositiveSpeed) {
  EXPECT_THROW(GridSite(config_of(2, 0.0, 0.5)), std::invalid_argument);
  EXPECT_THROW(GridSite(config_of(2, -1.0, 0.5)), std::invalid_argument);
}

TEST(GridSite, FitsChecksNodeCount) {
  const GridSite site(config_of(8, 1.0, 0.5));
  EXPECT_TRUE(site.fits(8));
  EXPECT_TRUE(site.fits(1));
  EXPECT_FALSE(site.fits(9));
}

TEST(GridSite, DispatchRejectsOversizedJobs) {
  GridSite site(config_of(2, 1.0, 0.5));
  EXPECT_THROW(site.dispatch(3, 10.0, 0.0), std::invalid_argument);
}

TEST(GridSite, DispatchCountsJobs) {
  GridSite site(config_of(2, 1.0, 0.5));
  site.dispatch(1, 5.0, 0.0);
  site.dispatch(2, 5.0, 0.0);
  EXPECT_EQ(site.dispatched_jobs(), 2u);
}

TEST(GridSite, UtilizationAccounting) {
  GridSite site(config_of(4, 1.0, 0.5));
  site.account_busy(2, 50.0);  // 100 node-seconds
  EXPECT_DOUBLE_EQ(site.busy_node_seconds(), 100.0);
  EXPECT_DOUBLE_EQ(site.utilization(100.0), 0.25);  // 100 / (4*100)
  EXPECT_DOUBLE_EQ(site.utilization(0.0), 0.0);
}

TEST(GridSite, UtilizationClampsToOne) {
  GridSite site(config_of(1, 1.0, 0.5));
  site.account_busy(1, 1000.0);
  EXPECT_DOUBLE_EQ(site.utilization(10.0), 1.0);
}

TEST(GridSite, ReleaseAfterFailureShortensBacklog) {
  GridSite site(config_of(1, 1.0, 0.5));
  const auto window = site.dispatch(1, 100.0, 0.0);
  EXPECT_EQ(site.release_after_failure(1, window.end, 30.0), 1u);
  EXPECT_DOUBLE_EQ(site.availability().earliest_start(1, 0.0), 30.0);
}

TEST(NodeAvailability, ReleaseWithCoincidingReservationEnds) {
  // Two independent reservations ending at the same instant: releasing one
  // job's nodes must reclaim exactly its node count, and releasing the
  // second afterwards must still find the remaining entries.
  NodeAvailability avail(3, 0.0);
  const auto w1 = avail.reserve(1, 10.0, 0.0);
  const auto w2 = avail.reserve(2, 10.0, 0.0);
  ASSERT_DOUBLE_EQ(w1.end, w2.end);  // coinciding by construction
  EXPECT_EQ(avail.release(1, w1.end, 4.0), 1u);
  const auto& after_first = avail.free_times();
  EXPECT_EQ(std::count(after_first.begin(), after_first.end(), 10.0), 2);
  EXPECT_EQ(std::count(after_first.begin(), after_first.end(), 4.0), 1);
  EXPECT_EQ(avail.release(2, w2.end, 6.0), 2u);
  const auto& after_second = avail.free_times();
  EXPECT_EQ(std::count(after_second.begin(), after_second.end(), 6.0), 2);
  EXPECT_TRUE(std::is_sorted(after_second.begin(), after_second.end()));
}

}  // namespace
}  // namespace gridsched::sim
