#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

namespace gridsched::util {
namespace {

// ---------------------------------------------------------------- Table ---

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RendersHeaderAndRule) {
  Table t({"a", "bb"});
  const std::string out = t.str();
  EXPECT_NE(out.find("a  bb"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell("1");
  t.row().cell("longer").cell("2");
  const std::string out = t.str();
  // Both data rows must place the second column at the same offset.
  const auto pos1 = out.find("x");
  const auto line1_end = out.find('\n', pos1);
  const std::string line1 = out.substr(pos1, line1_end - pos1);
  EXPECT_EQ(line1.find('1'), std::string("longer  ").size());
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  t.row().cell(std::size_t{42});
  t.row().cell(static_cast<long long>(-7));
  EXPECT_EQ(t.at(0, 0), "3.14");
  EXPECT_EQ(t.at(1, 0), "42");
  EXPECT_EQ(t.at(2, 0), "-7");
}

TEST(Table, LargeNumbersUseScientific) {
  Table t({"v"});
  t.row().cell(1.5e9, 2);
  EXPECT_NE(t.at(0, 0).find('e'), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::out_of_range);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t({"a"});
  t.cell("auto");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.at(0, 0), "auto");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"x", "y"});
  t.row().cell("a,b").cell("quote\"inside");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"x"});
  t.row().cell("plain");
  EXPECT_NE(t.csv().find("plain\n"), std::string::npos);
  EXPECT_EQ(t.csv().find('"'), std::string::npos);
}

TEST(FormatSi, Tiers) {
  EXPECT_EQ(format_si(950.0), "950");
  EXPECT_EQ(format_si(1500.0), "1.5k");
  EXPECT_EQ(format_si(2.5e6, "s"), "2.5M s");
  EXPECT_EQ(format_si(3.0e9), "3G");
}

// ------------------------------------------------------------------ Cli ---

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return {args};
}

TEST(Cli, ParsesEqualsForm) {
  const auto argv = argv_of({"prog", "--jobs=100", "--name=minmin"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_or("jobs", std::int64_t{0}), 100);
  EXPECT_EQ(cli.get_or("name", std::string("x")), "minmin");
}

TEST(Cli, ParsesSpaceForm) {
  const auto argv = argv_of({"prog", "--f", "0.5"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(cli.get_or("f", 0.0), 0.5);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const auto argv = argv_of({"prog", "--verbose"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_or("verbose", false));
  EXPECT_FALSE(cli.get_or("quiet", false));
}

TEST(Cli, BooleanSpellings) {
  const auto argv = argv_of({"prog", "--a=yes", "--b=0", "--c=on",
                             "--d=false"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(cli.get_or("a", false));
  EXPECT_FALSE(cli.get_or("b", true));
  EXPECT_TRUE(cli.get_or("c", false));
  EXPECT_FALSE(cli.get_or("d", true));
}

TEST(Cli, PositionalArguments) {
  const auto argv = argv_of({"prog", "input.trace", "--n=5", "output.csv"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.trace");
  EXPECT_EQ(cli.positional()[1], "output.csv");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const auto argv = argv_of({"prog"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(cli.get_or("x", std::int64_t{7}), 7);
  EXPECT_DOUBLE_EQ(cli.get_or("y", 1.5), 1.5);
  EXPECT_FALSE(cli.get("z").has_value());
}

TEST(Cli, MalformedNumberThrows) {
  const auto argv = argv_of({"prog", "--n=abc"});
  Cli cli(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(static_cast<void>(cli.get_or("n", std::int64_t{0})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cli.get_or("n", 0.0)), std::invalid_argument);
}

// ------------------------------------------------------------------ Log ---

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, MacrosRespectThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert on stderr here; this exercises the macro
  // paths for coverage and must not crash.
  GS_LOG_DEBUG("debug %d", 1);
  GS_LOG_INFO("info %s", "x");
  GS_LOG_WARN("warn");
  GS_LOG_ERROR("error");
  set_log_level(before);
  SUCCEED();
}

}  // namespace
}  // namespace gridsched::util
