// Steady-state allocation guard for the streaming kernel (PR 10): once
// the event loop has warmed its buffers (slot table, event queue, pending
// queue, scheduler context), running the hot loop — admissions,
// dispatches, completions, retirements, slot recycling — must perform
// ZERO heap allocations. Pinned with the same binary-wide counting
// allocator the decode fast path uses (decode_harness.hpp; this must stay
// the only translation unit in this binary including it).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "decode_harness.hpp"  // counting allocator (one TU per binary!)
#include "exp/scenario.hpp"
#include "metrics/metrics.hpp"
#include "security/security.hpp"
#include "sim/engine.hpp"
#include "sim/scheduling.hpp"
#include "workload/synth/stream_gen.hpp"

namespace gridsched {
namespace {

using bench::allocation_count;

/// Allocation-free batch scheduler: greedy first-usable-site placement
/// written through schedule_into into the kernel's persistent assignment
/// buffer. After warmup the buffer's capacity covers every later batch, so
/// scheduling contributes no heap traffic — isolating the kernel loop.
class GreedyIntoScheduler final : public sim::BatchScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "greedy-into"; }

  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override {
    std::vector<sim::Assignment> out;
    schedule_into(context, out);
    return out;
  }

  void schedule_into(const sim::SchedulerContext& context,
                     std::vector<sim::Assignment>& out) override {
    out.clear();
    for (std::size_t j = 0; j < context.jobs.size(); ++j) {
      const sim::BatchJob& job = context.jobs[j];
      for (std::size_t s = 0; s < context.sites.size(); ++s) {
        if (!context.site_usable(s)) continue;
        if (context.sites[s].nodes < job.nodes) continue;
        // Fail-stop retries must land on a safe site (kernel protocol).
        if (job.secure_only &&
            !security::is_safe(job.demand, context.sites[s].security)) {
          continue;
        }
        out.push_back({j, static_cast<sim::SiteId>(s)});
        break;
      }
    }
  }
};

/// Records the allocator count at every batch cycle (into pre-reserved
/// storage, so the observer itself never allocates mid-run).
class AllocSampleObserver final : public sim::KernelObserver {
 public:
  AllocSampleObserver() { samples.reserve(4096); }

  void on_cycle(const sim::SimKernel&, sim::Time, std::size_t, std::size_t,
                double) override {
    if (samples.size() < samples.capacity()) {
      samples.push_back(allocation_count());
    }
  }

  std::vector<std::uint64_t> samples;
};

TEST(StreamKernelAlloc, SteadyStateEventLoopIsAllocationFree) {
  workload::synth::SynthStreamConfig config;
  config.name = "alloc-probe";
  config.n_jobs = 6000;
  config.n_sites = 20;
  config.arrival.rate = 0.2;  // ~70% load on the 20-site default pattern
  workload::synth::StreamWorkload stream =
      workload::synth::stream_workload(config, 13);

  sim::EngineConfig engine_config;
  engine_config.batch_interval = 100.0;
  engine_config.seed = 4;
  sim::Engine engine(std::move(stream.sites), std::move(stream.jobs),
                     engine_config, std::move(stream.exec),
                     std::move(stream.churn));
  AllocSampleObserver probe;
  engine.set_observer(&probe);
  GreedyIntoScheduler scheduler;
  engine.run(scheduler);

  EXPECT_EQ(engine.kernel().retired_jobs(), config.n_jobs);
  ASSERT_GE(probe.samples.size(), 16u)
      << "run produced too few batch cycles to observe a steady state";

  // Every buffer high-water mark is deterministic (fixed seeds), so the
  // allocation count at two fixed cycles is deterministic too: after the
  // warmup half, the hot loop must not have touched the heap at all.
  const std::size_t half = probe.samples.size() / 2;
  const std::uint64_t at_half = probe.samples[half];
  const std::uint64_t at_end = probe.samples.back();
  EXPECT_EQ(at_half, at_end)
      << (at_end - at_half) << " heap allocation(s) in the steady-state "
      << "event loop between cycle " << half << " and cycle "
      << (probe.samples.size() - 1);
}

TEST(StreamKernelAlloc, RetainedModeSteadyStateIsAllocationFreeToo) {
  // The same guard for the retained kernel: the refactor shares the hot
  // loop between modes, so the vector-backed path must stay clean as well.
  workload::synth::SynthStreamConfig config;
  config.name = "alloc-probe-retained";
  config.n_jobs = 3000;
  config.n_sites = 20;
  config.arrival.rate = 0.2;
  workload::Workload drained = workload::synth::materialize_stream(
      workload::synth::stream_workload(config, 13));

  sim::EngineConfig engine_config;
  engine_config.batch_interval = 100.0;
  engine_config.seed = 4;
  sim::Engine engine(drained.sites, drained.jobs, engine_config, drained.exec,
                     drained.churn);
  AllocSampleObserver probe;
  engine.set_observer(&probe);
  GreedyIntoScheduler scheduler;
  engine.run(scheduler);

  ASSERT_GE(probe.samples.size(), 16u);
  const std::size_t half = probe.samples.size() / 2;
  EXPECT_EQ(probe.samples[half], probe.samples.back());
}

}  // namespace
}  // namespace gridsched
