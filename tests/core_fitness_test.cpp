#include "core/ga_problem.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace gridsched::core {
namespace {

sim::SchedulerContext small_context() {
  sim::SchedulerContext context;
  context.now = 0.0;
  context.sites = {{0, 1, 1.0, 0.9}, {1, 1, 2.0, 0.5}};
  context.avail = {sim::NodeAvailability(1, 0.0), sim::NodeAvailability(1,
                                                                        0.0)};
  sim::BatchJob a;
  a.id = 0;
  a.work = 10.0;
  a.nodes = 1;
  a.demand = 0.8;
  sim::BatchJob b = a;
  b.id = 1;
  b.work = 6.0;
  context.jobs = {a, b};
  return context;
}

TEST(BuildProblem, KeepsAdmissibleJobsAndDomains) {
  const auto context = small_context();
  const GaProblem secure =
      build_problem(context, security::RiskPolicy::secure());
  ASSERT_EQ(secure.n_jobs(), 2u);
  EXPECT_EQ(secure.domains[0], (std::vector<sim::SiteId>{0}));  // SL 0.5 unsafe
  const GaProblem risky = build_problem(context, security::RiskPolicy::risky());
  EXPECT_EQ(risky.domains[0], (std::vector<sim::SiteId>{0, 1}));
}

TEST(BuildProblem, DropsJobsWithEmptyDomains) {
  auto context = small_context();
  context.jobs[0].nodes = 5;  // fits nowhere
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  ASSERT_EQ(problem.n_jobs(), 1u);
  EXPECT_EQ(problem.batch_index[0], 1u);
}

TEST(BuildProblem, ComputesExecAndPfail) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky(2.0));
  EXPECT_DOUBLE_EQ(problem.exec_at(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(problem.exec_at(0, 1), 5.0);  // speed 2
  EXPECT_DOUBLE_EQ(problem.pfail_at(0, 0), 0.0);  // SL 0.9 >= SD 0.8
  EXPECT_NEAR(problem.pfail_at(0, 1),
              security::failure_probability(0.8, 0.5, 2.0), 1e-12);
}

TEST(DecodeOrder, ShortestExecutionFirst) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  // Both jobs on site 0: execs 10 and 6 -> job 1 goes first.
  EXPECT_EQ(decode_order(problem, {0, 0}),
            (std::vector<std::size_t>{1, 0}));
  // Job 0 on the fast site (exec 5) overtakes job 1 (exec 6).
  EXPECT_EQ(decode_order(problem, {1, 0}),
            (std::vector<std::size_t>{0, 1}));
}

TEST(BatchMakespan, SingleSiteQueueing) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  // Both on site 0: 6 then 10 back to back.
  EXPECT_DOUBLE_EQ(batch_makespan(problem, {0, 0}), 16.0);
  // Split: job0 on fast site (5), job1 on slow site (6).
  EXPECT_DOUBLE_EQ(batch_makespan(problem, {1, 0}), 6.0);
}

TEST(BatchMakespan, RespectsExistingBacklog) {
  auto context = small_context();
  context.avail[1].reserve(1, 100.0, 0.0);  // fast site busy until 100
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  EXPECT_DOUBLE_EQ(batch_makespan(problem, {1, 0}), 105.0);
}

TEST(BatchMakespan, WrongLengthThrows) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  EXPECT_THROW(batch_makespan(problem, {0}), std::invalid_argument);
}

TEST(DecodeFitness, PureMakespanWhenWeightsZero) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  const FitnessParams params{0.0, 0.0};
  EXPECT_DOUBLE_EQ(decode_fitness(problem, {0, 0}, params),
                   batch_makespan(problem, {0, 0}));
}

TEST(DecodeFitness, RiskTermAddsExpectedRework) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  const double p = problem.pfail_at(0, 1);
  // Job 0 alone cannot be built (length mismatch); use both jobs but give
  // job 1 the safe slow site so only job 0 carries risk.
  FitnessParams params{0.0, 1.0};
  const double base = batch_makespan(problem, {1, 0});
  // Expected completion of job 0 on site 1: 5 + p*5; job 1: 6 (safe).
  const double expected = std::max(6.0, 5.0 + p * 5.0);
  EXPECT_DOUBLE_EQ(decode_fitness(problem, {1, 0}, params), expected);
  EXPECT_GE(decode_fitness(problem, {1, 0}, params), base - 1.0);
}

TEST(DecodeFitness, FlowtimeTermPenalisesLateAverages) {
  const auto context = small_context();
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  const FitnessParams no_flow{0.0, 0.0};
  const FitnessParams with_flow{1.0, 0.0};
  // Same makespan contribution, flowtime adds the mean completion.
  const double base = decode_fitness(problem, {0, 0}, no_flow);
  const double flow = decode_fitness(problem, {0, 0}, with_flow);
  // Completions on site 0: 6 and 16 -> mean 11.
  EXPECT_DOUBLE_EQ(base, 16.0);
  EXPECT_DOUBLE_EQ(flow, 16.0 + 11.0);
}

TEST(IsFeasible, DetectsDomainViolations) {
  const auto context = small_context();
  const GaProblem secure =
      build_problem(context, security::RiskPolicy::secure());
  EXPECT_TRUE(is_feasible(secure, {0, 0}));
  EXPECT_FALSE(is_feasible(secure, {1, 0}));  // site 1 not in secure domain
  EXPECT_FALSE(is_feasible(secure, {0}));     // wrong length
}

/// Property: batch_makespan equals a brute-force replay of the same
/// shortest-first reservation discipline on random instances.
class FitnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FitnessProperty, MatchesBruteForceReplay) {
  util::Rng rng(GetParam());
  for (int instance = 0; instance < 10; ++instance) {
    sim::SchedulerContext context;
    context.now = rng.uniform(0.0, 50.0);
    const std::size_t n_sites = 2 + rng.index(4);
    for (std::size_t s = 0; s < n_sites; ++s) {
      const auto nodes = static_cast<unsigned>(1 + rng.index(4));
      context.sites.push_back({static_cast<sim::SiteId>(s), nodes,
                               rng.uniform(0.5, 3.0), rng.uniform(0.4, 1.0)});
      sim::NodeAvailability avail(nodes, 0.0);
      if (rng.bernoulli(0.5)) {
        avail.reserve(1 + static_cast<unsigned>(rng.index(nodes)),
                      rng.uniform(1.0, 40.0), 0.0);
      }
      context.avail.push_back(avail);
    }
    const std::size_t n_jobs = 1 + rng.index(10);
    for (std::size_t j = 0; j < n_jobs; ++j) {
      sim::BatchJob job;
      job.id = static_cast<sim::JobId>(j);
      job.work = rng.uniform(1.0, 30.0);
      job.nodes = 1;
      job.demand = rng.uniform(0.6, 0.9);
      context.jobs.push_back(job);
    }
    const GaProblem problem =
        build_problem(context, security::RiskPolicy::risky());
    util::Rng chrom_rng(GetParam() + 1000);
    Chromosome chromosome(problem.n_jobs());
    for (std::size_t j = 0; j < chromosome.size(); ++j) {
      const auto& domain = problem.domains[j];
      chromosome[j] = domain[chrom_rng.index(domain.size())];
    }

    // Brute force: sort (exec, index), replay reservations.
    std::vector<std::size_t> order(chromosome.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      return problem.exec_at(a, chromosome[a]) < problem.exec_at(b,
                                                                 chromosome[b]);
    });
    std::vector<sim::NodeAvailability> avail = problem.avail;
    double expected = problem.now;
    for (const std::size_t j : order) {
      const auto window = avail[chromosome[j]].reserve(
          problem.jobs[j].nodes, problem.exec_at(j,
                                                 chromosome[j]), problem.now);
      expected = std::max(expected, window.end);
    }
    EXPECT_DOUBLE_EQ(batch_makespan(problem, chromosome), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitnessProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace gridsched::core
