#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace gridsched::util::json {
namespace {

// --------------------------------------------------------------- parsing ---

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-1e3").as_number(), -1000.0);
  EXPECT_DOUBLE_EQ(parse("0").as_number(), 0.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NestedStructure) {
  const Value doc = parse(R"({
    "name": "spec",
    "count": 3,
    "items": [1, 2, {"deep": [true, null]}],
    "empty_obj": {},
    "empty_arr": []
  })");
  EXPECT_EQ(doc.at("name").as_string(), "spec");
  EXPECT_EQ(doc.at("count").as_int(), 3);
  ASSERT_EQ(doc.at("items").items().size(), 3u);
  EXPECT_TRUE(doc.at("items").items()[2].at("deep").items()[0].as_bool());
  EXPECT_TRUE(doc.at("empty_obj").members().empty());
  EXPECT_TRUE(doc.at("empty_arr").items().empty());
}

TEST(JsonParse, PreservesMemberOrder) {
  const Value doc = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, FindAndAt) {
  const Value doc = parse(R"({"a": 1})");
  EXPECT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_THROW(static_cast<void>(doc.at("b")), std::runtime_error);
}

TEST(JsonParse, IntAccessors) {
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("42").as_uint(), 42u);
  EXPECT_EQ(parse("-42").as_int(), -42);
  EXPECT_THROW(static_cast<void>(parse("1.5").as_int()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse("-3").as_uint()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse("1e30").as_int()), std::runtime_error);
}

TEST(JsonParse, IntegersBeyondDoublePrecisionStayExact) {
  // Campaign seeds are uint64; 2^53+1 and UINT64_MAX must not round
  // through the double representation.
  EXPECT_EQ(parse("9007199254740993").as_uint(), 9007199254740993ULL);
  EXPECT_EQ(parse("18446744073709551615").as_uint(), 18446744073709551615ULL);
  EXPECT_EQ(parse("9223372036854775807").as_int(), 9223372036854775807LL);
  EXPECT_EQ(parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  // Out of range is an error, not a rounding.
  EXPECT_THROW(static_cast<void>(parse("18446744073709551616").as_uint()),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse("9223372036854775808").as_int()),
               std::runtime_error);
}

TEST(JsonParse, TypeMismatchNamesKinds) {
  try {
    static_cast<void>(parse("\"x\"").as_number());
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("expected number"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("string"), std::string::npos);
  }
}

// ---------------------------------------------------------------- errors ---

TEST(JsonParse, MalformedInputsThrowWithPosition) {
  const char* bad[] = {
      "",           "{",           "[1, ]",     "{\"a\" 1}",
      "{\"a\": 1,}", "nul",        "01",        "1.",
      "1e",         "\"unterminated", "\"bad \x01 ctrl\"", "[1] trailing",
      "{\"a\": 1, \"a\": 2}",  // duplicate key
      "\"\\ud800\"",            // unpaired surrogate
  };
  for (const char* text : bad) {
    EXPECT_THROW(static_cast<void>(parse(text)), std::runtime_error)
        << "input: " << text;
  }
  try {
    static_cast<void>(parse("{\n  \"a\": nope\n}"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(JsonParse, DepthLimited) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(static_cast<void>(parse(deep)), std::runtime_error);
}

TEST(JsonParseFile, MissingFileThrowsWithPath) {
  try {
    static_cast<void>(parse_file("/nonexistent/spec.json"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("spec.json"), std::string::npos);
  }
}

// --------------------------------------------------------------- writing ---

TEST(JsonWrite, QuoteEscapes) {
  EXPECT_EQ(quote("plain"), "\"plain\"");
  EXPECT_EQ(quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(quote(std::string_view("ctrl\x01", 5)), "\"ctrl\\u0001\"");
}

TEST(JsonWrite, NumberRoundTripsAndIsShortest) {
  EXPECT_EQ(number(1.0), "1");
  EXPECT_EQ(number(0.5), "0.5");
  EXPECT_EQ(number(-3.0), "-3");
  // 0.1 is not exactly representable; shortest form must round-trip.
  const double values[] = {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300};
  for (const double value : values) {
    EXPECT_EQ(std::strtod(number(value).c_str(), nullptr), value);
  }
  EXPECT_THROW(static_cast<void>(number(std::nan(""))), std::invalid_argument);
}

}  // namespace
}  // namespace gridsched::util::json
